"""The Workflow Adapter (box B of Fig. 1).

"The Workflow Adapter is a module that allows experts to add quality
information to a workflow specification ... without changing the
workflow model."

The adapter's contract is enforced, not just promised: every mutation
goes through :meth:`WorkflowAdapter.add_quality_annotation`, which
fingerprints the workflow's *dataflow structure* before and after and
raises if anything but annotations changed.  This is the Process
Designer's tool.
"""

from __future__ import annotations

import datetime as _dt
from typing import Mapping

from repro.errors import UnknownProcessorError, WorkflowError
from repro.hashing import canonical_digest
from repro.workflow.annotations import AnnotationAssertion, QualityAnnotation
from repro.workflow.model import Workflow

__all__ = ["WorkflowAdapter", "structure_fingerprint"]


def structure_fingerprint(workflow: Workflow) -> str:
    """A hash of the workflow's dataflow structure — processors, ports,
    configs and links — excluding annotations."""
    structure = {
        "name": workflow.name,
        "processors": [
            {
                "name": processor.name,
                "kind": processor.kind,
                "inputs": sorted(processor.input_ports),
                "outputs": sorted(processor.output_ports),
                "config": processor.config,
            }
            for processor in sorted(workflow.processors.values(),
                                    key=lambda p: p.name)
        ],
        "links": sorted(
            (link.source, link.source_port, link.sink, link.sink_port)
            for link in workflow.links
        ),
    }
    return canonical_digest(structure)


class WorkflowAdapter:
    """Attaches quality annotations to workflows.

    Parameters
    ----------
    creator:
        Recorded on every assertion (the expert's identity).
    clock:
        Zero-argument callable returning the assertion timestamp;
        defaults to the Listing 1 instant, keeping runs deterministic.
    """

    def __init__(self, creator: str = "process designer",
                 clock=None) -> None:
        self.creator = creator
        self._clock = clock or (
            lambda: _dt.datetime(2013, 11, 12, 19, 58, 9)
        )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def add_quality_annotation(self, workflow: Workflow,
                               processor_name: str | None,
                               quality: Mapping[str, float],
                               note: str = "") -> AnnotationAssertion:
        """Attach ``Q(dimension): value`` statements.

        ``processor_name=None`` annotates the workflow itself.  The
        workflow's dataflow structure is fingerprinted around the edit;
        a change aborts with :class:`~repro.errors.WorkflowError`.
        """
        if not quality:
            raise WorkflowError("refusing to add an empty quality annotation")
        before = structure_fingerprint(workflow)
        text = QualityAnnotation(dict(quality)).to_text()
        if note:
            text = f"{note}\n{text}"
        assertion = AnnotationAssertion(text, date=self._clock(),
                                        creator=self.creator)
        if processor_name is None:
            workflow.annotate(assertion)
        else:
            workflow.processor(processor_name).annotate(assertion)
        after = structure_fingerprint(workflow)
        if before != after:
            raise WorkflowError(
                "annotation changed the workflow structure — adapter "
                "contract violated"
            )
        return assertion

    def annotate_source(self, workflow: Workflow, processor_name: str,
                        reputation: float, availability: float,
                        note: str = "") -> AnnotationAssertion:
        """The Listing 1 pattern: declare an external source's
        reputation and availability on its processor."""
        return self.add_quality_annotation(
            workflow, processor_name,
            {"reputation": reputation, "availability": availability},
            note=note,
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def quality_of(self, workflow: Workflow,
                   processor_name: str | None = None) -> QualityAnnotation:
        """The merged quality statements of a processor (or the
        workflow)."""
        if processor_name is None:
            return workflow.quality
        return workflow.processor(processor_name).quality

    def annotated_processors(self, workflow: Workflow) -> dict[str, QualityAnnotation]:
        """Every processor that carries at least one Q statement."""
        result: dict[str, QualityAnnotation] = {}
        for name, processor in workflow.processors.items():
            quality = processor.quality
            if len(quality):
                result[name] = quality
        return result

    def strip_annotations(self, workflow: Workflow) -> int:
        """Remove every annotation (used in the A1 ablation); returns
        how many were removed."""
        removed = len(workflow.annotations)
        workflow.annotations.clear()
        for processor in workflow.processors.values():
            removed += len(processor.annotations)
            processor.annotations.clear()
        return removed

    def ensure_quality_aware(self, workflow: Workflow,
                             processor_name: str) -> None:
        """Assert that ``processor_name`` carries quality statements —
        used as a pre-run check for quality-aware workflows."""
        try:
            processor = workflow.processor(processor_name)
        except UnknownProcessorError:
            raise
        if not len(processor.quality):
            raise WorkflowError(
                f"processor {processor_name!r} has no quality annotations; "
                "run the Workflow Adapter first"
            )
