"""The paper's contribution: provenance-driven quality assessment.

"The Data Quality Manager is responsible for assessing data quality,
based on expert requirements.  This module generates quality information
from: (a) the provenance information stored by the Provenance Manager,
(b) the quality attributes added to workflows by the Workflow Adapter
and (c) external data sources."

* :mod:`repro.core.dimensions` — the quality-dimension registry
  (accuracy, completeness, timeliness, consistency, reputation,
  availability, ...), user-extensible;
* :mod:`repro.core.metrics` — metric definitions and the standard
  measurement methods;
* :mod:`repro.core.profile` — user-defined quality profiles (goals +
  weighted metrics), following Lemos' metamodel;
* :mod:`repro.core.adapter` — the **Workflow Adapter**: attach
  ``Q(dimension): value`` annotations without changing the workflow;
* :mod:`repro.core.manager` — the **Data Quality Manager**;
* :mod:`repro.core.assessment` — assessment contexts and reports
  (workflow trace + computed quality attributes);
* :mod:`repro.core.baseline` — the attribute-based assessor used as the
  comparison baseline (quality without provenance);
* :mod:`repro.core.decay` — quality decay under evolving knowledge;
* :mod:`repro.core.preservation` — Table I's four preservation models.
"""

from repro.core.adapter import WorkflowAdapter
from repro.core.assessment import AssessmentContext, AssessmentReport, QualityValue
from repro.core.baseline import AttributeBasedAssessor
from repro.core.decay import DecaySimulator, DecaySeries
from repro.core.dimensions import DimensionRegistry, QualityDimension
from repro.core.manager import DataQualityManager
from repro.core.media import MediaType, MigrationEvent, migration_plan
from repro.core.metrics import MetricResult, QualityMetric
from repro.core.preservation import (
    PreservationLevel,
    PreservationPackage,
    PreservationPolicy,
    archive_collection,
)
from repro.core.profile import QualityGoal, QualityProfile
from repro.core.tracking import QualityLedger

__all__ = [
    "MediaType",
    "MigrationEvent",
    "QualityLedger",
    "migration_plan",
    "AssessmentContext",
    "AssessmentReport",
    "AttributeBasedAssessor",
    "DataQualityManager",
    "DecaySeries",
    "DecaySimulator",
    "DimensionRegistry",
    "MetricResult",
    "PreservationLevel",
    "PreservationPackage",
    "PreservationPolicy",
    "QualityDimension",
    "QualityGoal",
    "QualityMetric",
    "QualityProfile",
    "QualityValue",
    "WorkflowAdapter",
    "archive_collection",
]
