"""Quality metrics and the standard measurement methods.

A :class:`QualityMetric` binds a dimension to a *measurement method* — a
callable ``AssessmentContext -> MetricResult``.  "Quality metrics are
computed as defined by end users (scientists)": users may register any
callable; this module ships the methods the case study and the
benchmarks need.

Standard factories
------------------
* :func:`name_accuracy_metric` — % of distinct species names that are
  up to date (the paper's headline 93 %);
* :func:`completeness_metric` — fraction of filled fields, optionally
  restricted to one Table II group;
* :func:`consistency_metric` — fraction of records with no domain
  violations;
* :func:`annotated_metric` — read a dimension straight from the
  provenance-carried workflow annotations (reputation, availability);
* :func:`measured_availability_metric` — observed success rate of the
  external service, from the workflow output;
* :func:`timeliness_metric` — recency of the last curation relative to
  a staleness horizon.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.core.assessment import AssessmentContext, QualityValue
from repro.errors import MetricError
from repro.taxonomy.nomenclature import normalize_name

__all__ = [
    "MetricResult",
    "QualityMetric",
    "name_accuracy_metric",
    "completeness_metric",
    "consistency_metric",
    "annotated_metric",
    "measured_availability_metric",
    "timeliness_metric",
]

MeasurementMethod = Callable[[AssessmentContext], "MetricResult"]


class MetricResult:
    """The outcome of one measurement: a [0, 1] value plus evidence."""

    __slots__ = ("value", "details")

    def __init__(self, value: float, details: Mapping[str, Any] | None = None) -> None:
        if not 0.0 <= value <= 1.0:
            raise MetricError(f"metric value {value} outside [0, 1]")
        self.value = float(value)
        self.details = dict(details or {})

    def __repr__(self) -> str:
        return f"MetricResult({self.value:.3f})"


class QualityMetric:
    """A named measurement bound to a dimension."""

    def __init__(self, name: str, dimension: str,
                 method: MeasurementMethod,
                 source: str = "computed",
                 description: str = "") -> None:
        self.name = name
        self.dimension = dimension
        self.method = method
        self.source = source
        self.description = description

    def __repr__(self) -> str:
        return f"QualityMetric({self.name} -> {self.dimension})"

    def measure(self, context: AssessmentContext) -> QualityValue:
        """Run the method; wrap the result as a :class:`QualityValue`."""
        result = self.method(context)
        return QualityValue(self.dimension, result.value, self.source,
                            method=self.name, details=result.details)


# ---------------------------------------------------------------------------
# standard measurement methods
# ---------------------------------------------------------------------------

def name_accuracy_metric() -> QualityMetric:
    """Accuracy of species names: up-to-date distinct names / distinct
    names analyzed.

    Prefers the species-check workflow's summary (the paper computes it
    from the workflow output + provenance); falls back to resolving the
    collection's names against the catalogue directly.
    """

    def method(context: AssessmentContext) -> MetricResult:
        summary = context.workflow_output.get("summary")
        if isinstance(summary, Mapping) and "distinct_names" in summary:
            total = int(summary["distinct_names"])
            outdated = int(summary.get("outdated_names", 0))
            unresolved = int(summary.get("unresolved_names", 0))
            if total <= 0:
                raise MetricError("summary reports no analyzed names")
            accurate = total - outdated
            return MetricResult(accurate / total, {
                "distinct_names": total,
                "outdated_names": outdated,
                "unresolved_names": unresolved,
                "basis": "workflow output",
            })
        if context.collection is None or context.catalogue is None:
            raise MetricError(
                "name accuracy needs a workflow summary, or a collection "
                "plus a catalogue"
            )
        names = {
            normalize_name(name)
            for name in context.collection.distinct_species()
        }
        outdated = sum(
            1 for name in names
            if context.catalogue.resolve(name, fuzzy=False).is_outdated
        )
        return MetricResult(1 - outdated / len(names), {
            "distinct_names": len(names),
            "outdated_names": outdated,
            "basis": "direct catalogue resolution",
        })

    return QualityMetric(
        "species_name_accuracy", "accuracy", method,
        description="fraction of distinct species names that are current",
    )


def completeness_metric(group: int | None = None,
                        fields: list[str] | None = None) -> QualityMetric:
    """Mean filled-fraction over the collection's records."""

    def method(context: AssessmentContext) -> MetricResult:
        if context.collection is None:
            raise MetricError("completeness needs a collection")
        total = 0.0
        count = 0
        for record in context.collection.records():
            count += 1
            if fields is not None:
                filled = sum(
                    1 for field in fields
                    if record.get(field) is not None
                )
                total += filled / len(fields) if fields else 1.0
            else:
                total += record.completeness(group)
        if count == 0:
            return MetricResult(1.0, {"records": 0})
        return MetricResult(total / count, {
            "records": count, "group": group, "fields": fields,
        })

    suffix = f"_group{group}" if group else ""
    return QualityMetric(
        f"field_completeness{suffix}", "completeness", method,
        description="mean fraction of filled metadata fields",
    )


def consistency_metric() -> QualityMetric:
    """Fraction of records with zero domain violations."""

    def method(context: AssessmentContext) -> MetricResult:
        if context.collection is None:
            raise MetricError("consistency needs a collection")
        clean = 0
        count = 0
        violations_total = 0
        for record in context.collection.records():
            count += 1
            violations = record.domain_violations()
            if not violations:
                clean += 1
            violations_total += len(violations)
        if count == 0:
            return MetricResult(1.0, {"records": 0})
        return MetricResult(clean / count, {
            "records": count,
            "records_with_violations": count - clean,
            "total_violations": violations_total,
        })

    return QualityMetric(
        "domain_consistency", "consistency", method,
        description="fraction of records respecting every field domain",
    )


def annotated_metric(dimension: str) -> QualityMetric:
    """Read ``dimension`` from the run's provenance-carried annotations
    (minimum across annotating processes)."""

    def method(context: AssessmentContext) -> MetricResult:
        value = context.annotated_value(dimension)
        if value is None:
            raise MetricError(
                f"no process in the run annotates Q({dimension})"
            )
        return MetricResult(value, {
            "basis": "workflow annotation via provenance",
            "processes": {
                process: quality[dimension]
                for process, quality in context.process_annotations().items()
                if dimension in quality
            },
        })

    return QualityMetric(
        f"annotated_{dimension}", dimension, method, source="annotation",
        description=f"Q({dimension}) as asserted by the process designer",
    )


def measured_availability_metric() -> QualityMetric:
    """Observed availability of the external source during the run,
    from the workflow's service statistics output."""

    def method(context: AssessmentContext) -> MetricResult:
        stats = context.workflow_output.get("service_stats")
        if not isinstance(stats, Mapping) or "calls" not in stats:
            raise MetricError(
                "run output carries no service statistics"
            )
        calls = int(stats["calls"])
        failures = int(stats.get("failures", 0))
        value = 1.0 if calls == 0 else (calls - failures) / calls
        return MetricResult(value, {
            "calls": calls, "failures": failures,
            "basis": "observed during workflow execution",
        })

    return QualityMetric(
        "measured_availability", "availability", method,
        source="provenance",
        description="success rate of external-service calls in the run",
    )


def timeliness_metric(current_year: int, horizon_years: float = 10.0) -> QualityMetric:
    """Linear staleness: 1.0 right after curation, 0.0 at the horizon.

    The last curation year is read from ``context.extras
    ['last_curated_year']`` (set by the curation pipeline).
    """

    def method(context: AssessmentContext) -> MetricResult:
        last = context.extras.get("last_curated_year")
        if last is None:
            raise MetricError(
                "context.extras lacks 'last_curated_year'"
            )
        age = max(0.0, current_year - float(last))
        value = max(0.0, 1.0 - age / horizon_years)
        return MetricResult(value, {
            "last_curated_year": last, "age_years": age,
            "horizon_years": horizon_years,
        })

    return QualityMetric(
        "curation_timeliness", "timeliness", method,
        description="recency of the last curation pass",
    )
