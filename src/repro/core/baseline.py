"""The attribute-based assessor — the comparison baseline.

"Related work either considers provenance to assess quality (which we
call provenance-based) or disregards it, considering other attributes
(a trend we call attribute based)."

:class:`AttributeBasedAssessor` implements the attribute-based trend: it
looks *only* at the data values themselves — completeness, domain
consistency, syntactic well-formedness — and is blind to where the data
came from, what process produced it, and how trustworthy or available
the external sources were.  The A1 ablation shows what that blindness
costs: degrade the source and the attribute-based score does not move.
"""

from __future__ import annotations

from repro.core.assessment import AssessmentContext, AssessmentReport
from repro.core.metrics import (
    MetricResult,
    QualityMetric,
    completeness_metric,
    consistency_metric,
)
from repro.errors import MetricError
from repro.taxonomy.nomenclature import ScientificName

__all__ = ["AttributeBasedAssessor", "syntax_validity_metric"]


def syntax_validity_metric() -> QualityMetric:
    """Fraction of species names that are well-formed binomials.

    Purely syntactic — an attribute-based assessor can check the *shape*
    of a name but not whether taxonomy moved on (that needs the external
    source, reachable only through provenance-aware assessment here).
    """

    def method(context: AssessmentContext) -> MetricResult:
        if context.collection is None:
            raise MetricError("syntax validity needs a collection")
        names = context.collection.distinct_species()
        if not names:
            return MetricResult(1.0, {"names": 0})
        well_formed = sum(
            1 for name in names
            if (parsed := ScientificName.try_parse(name)) is not None
            and parsed.is_binomial
            and name == parsed.canonical
        )
        return MetricResult(well_formed / len(names), {
            "names": len(names),
            "malformed": len(names) - well_formed,
        })

    # its own dimension so reports can show it next to domain consistency
    return QualityMetric(
        "name_syntax_validity", "syntactic_validity", method,
        description="fraction of species names that are clean binomials",
    )


class AttributeBasedAssessor:
    """Quality from attributes only — no provenance, no external source."""

    def __init__(self) -> None:
        self._metrics = [
            completeness_metric(),
            consistency_metric(),
            syntax_validity_metric(),
        ]

    def assess(self, collection) -> AssessmentReport:
        """Assess ``collection`` from its values alone."""
        context = AssessmentContext(collection=collection)
        report = AssessmentReport(subject=f"{collection.name} (attribute-based)")
        for metric in self._metrics:
            value = metric.measure(context)
            report.add(value)
        report.note(
            "attribute-based assessment: source reputation, availability "
            "and name currency are invisible without provenance"
        )
        return report

    def overall_score(self, collection) -> float:
        """Unweighted mean of the attribute metrics."""
        report = self.assess(collection)
        values = [value.value for value in report]
        return sum(values) / len(values) if values else 0.0
