"""Storage media and migration planning.

The paper's introduction lists "continuous backing up and porting of
data (and software) to new media and devices" among the measures that
keep a Domesday-style disaster at bay, and §II-C recalls that "earlier
animal recordings were commonly stored in magnetic tapes, requiring
special attention".

This module makes that concern schedulable: each :class:`MediaType`
has an introduction year and an expected service life;
:func:`migration_plan` lays out, for a
:class:`~repro.core.preservation.PreservationPolicy`, when the archived
package must be refreshed or ported and onto which medium, and
:func:`plan_cost` totals the bytes moved over the policy's lifetime.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.preservation import PreservationPackage, PreservationPolicy
from repro.errors import QualityError

__all__ = ["MediaType", "MEDIA_TYPES", "MigrationEvent",
           "migration_plan", "plan_cost", "media_available"]


class MediaType:
    """One storage medium generation."""

    __slots__ = ("name", "introduced", "retired", "service_life_years")

    def __init__(self, name: str, introduced: int,
                 service_life_years: int, retired: int = 9999) -> None:
        if service_life_years <= 0:
            raise QualityError("service life must be positive")
        self.name = name
        self.introduced = introduced
        self.retired = retired
        self.service_life_years = service_life_years

    def available_in(self, year: int) -> bool:
        return self.introduced <= year <= self.retired

    def __repr__(self) -> str:
        return (
            f"MediaType({self.name}, {self.introduced}-, "
            f"life {self.service_life_years}y)"
        )


#: a plausible media timeline for a collection founded in the 1960s
MEDIA_TYPES: tuple[MediaType, ...] = (
    MediaType("magnetic tape", 1950, 12, retired=2005),
    MediaType("CD-R", 1990, 10, retired=2015),
    MediaType("DAT", 1992, 8, retired=2010),
    MediaType("HDD array", 2000, 5),
    MediaType("LTO tape", 2002, 9),
    MediaType("cloud object store", 2010, 7),
)


def media_available(year: int,
                    media: Iterable[MediaType] = MEDIA_TYPES) -> list[MediaType]:
    """Media one could buy in ``year``, by *effective* life descending.

    Effective life caps the nominal service life at the medium's
    remaining market window — buying a medium the year before it is
    discontinued buys one year, not twelve.
    """
    def effective_life(medium: MediaType) -> int:
        return min(medium.service_life_years,
                   medium.retired - year + 1)

    candidates = [m for m in media if m.available_in(year)]
    return sorted(candidates, key=lambda m: (-effective_life(m), m.name))


class MigrationEvent:
    """One scheduled refresh/port."""

    __slots__ = ("year", "from_medium", "to_medium", "reason")

    def __init__(self, year: int, from_medium: str, to_medium: str,
                 reason: str) -> None:
        self.year = year
        self.from_medium = from_medium
        self.to_medium = to_medium
        self.reason = reason

    def __repr__(self) -> str:
        return (
            f"MigrationEvent({self.year}: {self.from_medium} -> "
            f"{self.to_medium} [{self.reason}])"
        )


def migration_plan(policy: PreservationPolicy, start_year: int,
                   media: Iterable[MediaType] = MEDIA_TYPES) -> list[MigrationEvent]:
    """The refresh schedule keeping an archive alive over the policy's
    lifetime.

    Strategy: always archive onto the longest-lived medium currently on
    the market; migrate when the medium reaches end of service life or
    leaves the market (whichever is sooner), onto the then-best medium.
    """
    media = list(media)
    end_year = start_year + policy.lifetime_years
    available = media_available(start_year, media)
    if not available:
        raise QualityError(f"no storage media available in {start_year}")
    current = available[0]
    year = start_year
    events: list[MigrationEvent] = []
    while True:
        wear_out = year + current.service_life_years
        market_exit = current.retired + 1
        next_migration = min(wear_out, market_exit)
        if next_migration >= end_year:
            break
        reason = ("media end of service life"
                  if wear_out <= market_exit else "media discontinued")
        candidates = media_available(next_migration, media)
        if not candidates:
            raise QualityError(
                f"no storage media available in {next_migration}"
            )
        successor = candidates[0]
        events.append(MigrationEvent(next_migration, current.name,
                                     successor.name, reason))
        current = successor
        year = next_migration
    return events


def plan_cost(package: PreservationPackage,
              events: list[MigrationEvent]) -> dict[str, float]:
    """Total bytes moved and mean interval of the plan."""
    moved = package.size_bytes() * len(events)
    intervals = [
        later.year - earlier.year
        for earlier, later in zip(events, events[1:])
    ]
    return {
        "migrations": len(events),
        "bytes_moved": moved,
        "mean_interval_years": (
            sum(intervals) / len(intervals) if intervals else 0.0
        ),
    }
