"""repro — provenance-based quality assessment for long-term preservation
of scientific (meta)data.

A full reproduction of Sousa, Cugler, Malaverri & Medeiros, *"A
provenance-based approach to manage long term preservation of scientific
data"* (ICDE 2014 workshops), built from scratch:

* :mod:`repro.storage` — an embeddable relational engine (the DBMS box);
* :mod:`repro.workflow` — a Taverna-like dataflow engine;
* :mod:`repro.provenance` — OPM v1.1, Provenance Manager & repository;
* :mod:`repro.taxonomy` — a simulated Catalogue of Life;
* :mod:`repro.geo` — gazetteer, climate archive, spatial analysis;
* :mod:`repro.sounds` — the synthetic FNJV-like sound collection;
* :mod:`repro.core` — **the paper's contribution**: quality dimensions,
  metrics, profiles, the Workflow Adapter and the Data Quality Manager;
* :mod:`repro.curation` — the case study's curation pipelines;
* :mod:`repro.casestudy` — the end-to-end FNJV reproduction.

Quickstart::

    from repro.casestudy import FNJVCaseStudy

    study = FNJVCaseStudy()          # seeded; reproduces the paper
    results = study.run()
    print(results.check.render())    # Fig. 2
    print(results.quality.render())  # §IV-C quality report
"""

__version__ = "1.0.0"

from repro import errors

__all__ = ["errors", "__version__"]
