"""A synthetic Neotropical gazetteer.

Most FNJV recordings predate GPS; stage 1.2 of the paper's curation adds
coordinates by resolving textual place fields (country / state / city /
location) against a gazetteer, with human curators disambiguating vague
names.  This module generates a deterministic gazetteer:

* real country and (for Brazil) state names with plausible bounding
  boxes;
* seeded synthetic city names placed inside their state's box;
* resolution that degrades gracefully — city hit (small uncertainty),
  state centroid (medium), country centroid (large) — and reports
  ambiguity when several places share a name.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.errors import GeocodingError

__all__ = ["Place", "Gazetteer"]

# name -> (lat_min, lat_max, lon_min, lon_max) rough bounding boxes
_COUNTRIES: dict[str, tuple[float, float, float, float]] = {
    "Brasil": (-33.0, 4.0, -73.0, -35.0),
    "Argentina": (-45.0, -22.0, -70.0, -55.0),
    "Peru": (-18.0, 0.0, -81.0, -69.0),
    "Colombia": (-4.0, 12.0, -79.0, -67.0),
    "Venezuela": (1.0, 12.0, -73.0, -60.0),
    "Ecuador": (-5.0, 1.5, -81.0, -75.0),
    "Bolivia": (-22.5, -10.0, -69.0, -58.0),
    "Paraguay": (-27.5, -19.5, -62.5, -54.5),
    "Uruguay": (-35.0, -30.0, -58.5, -53.5),
    "Mexico": (14.5, 23.0, -105.0, -87.0),
}

# Brazilian states (the collection's core) with rough boxes
_BR_STATES: dict[str, tuple[float, float, float, float]] = {
    "Sao Paulo": (-25.3, -19.8, -53.1, -44.2),
    "Minas Gerais": (-22.9, -14.2, -51.0, -39.9),
    "Rio de Janeiro": (-23.4, -20.8, -44.9, -41.0),
    "Bahia": (-18.3, -8.5, -46.6, -37.3),
    "Amazonas": (-9.8, 2.2, -73.8, -56.1),
    "Mato Grosso": (-18.0, -7.3, -61.6, -50.2),
    "Parana": (-26.7, -22.5, -54.6, -48.0),
    "Santa Catarina": (-29.4, -25.9, -53.8, -48.3),
    "Rio Grande do Sul": (-33.8, -27.1, -57.6, -49.7),
    "Goias": (-19.5, -12.4, -53.2, -45.9),
    "Para": (-9.9, 2.6, -58.9, -46.0),
    "Pernambuco": (-9.5, -7.3, -41.4, -34.8),
}

_CITY_PREFIXES = ["Sao", "Santa", "Santo", "Nova", "Porto", "Vila",
                  "Campo", "Ribeirao", "Monte", "Serra", "Lagoa", "Boa"]
_CITY_CORES = ["Joao", "Maria", "Antonio", "Pedra", "Verde", "Alegre",
               "Grande", "Preto", "Claro", "Bonito", "Alto", "Azul",
               "Branco", "das Flores", "do Sul", "do Norte", "da Mata",
               "dos Campos", "Esperanca", "Aurora"]


class Place:
    """One gazetteer entry."""

    __slots__ = ("name", "kind", "country", "state", "latitude",
                 "longitude", "uncertainty_km")

    def __init__(self, name: str, kind: str, country: str,
                 state: str | None, latitude: float, longitude: float,
                 uncertainty_km: float) -> None:
        self.name = name
        self.kind = kind  # "city" | "state" | "country"
        self.country = country
        self.state = state
        self.latitude = latitude
        self.longitude = longitude
        self.uncertainty_km = uncertainty_km

    def __repr__(self) -> str:
        return (
            f"Place({self.name}, {self.kind}, "
            f"{self.latitude:.3f},{self.longitude:.3f} "
            f"±{self.uncertainty_km:.0f}km)"
        )

    @property
    def coordinates(self) -> tuple[float, float]:
        return (self.latitude, self.longitude)


def _centroid(box: tuple[float, float, float, float]) -> tuple[float, float]:
    lat_min, lat_max, lon_min, lon_max = box
    return ((lat_min + lat_max) / 2, (lon_min + lon_max) / 2)


def _box_radius_km(box: tuple[float, float, float, float]) -> float:
    lat_min, lat_max, lon_min, lon_max = box
    # ~111 km per degree of latitude; a crude but honest uncertainty
    return max(lat_max - lat_min, lon_max - lon_min) * 111 / 2


class Gazetteer:
    """Seeded synthetic place index with hierarchical resolution."""

    def __init__(self, seed: int = 2013, cities_per_state: int = 24,
                 cities_per_country: int = 10,
                 ambiguous_fraction: float = 0.04) -> None:
        self.seed = seed
        self._cities: dict[str, list[Place]] = {}
        rng = random.Random(seed)

        def add_city(name: str, country: str, state: str | None,
                     box: tuple[float, float, float, float]) -> None:
            lat_min, lat_max, lon_min, lon_max = box
            place = Place(
                name, "city", country, state,
                rng.uniform(lat_min, lat_max),
                rng.uniform(lon_min, lon_max),
                uncertainty_km=rng.uniform(2.0, 12.0),
            )
            self._cities.setdefault(name, []).append(place)

        # Brazilian cities, state by state.
        names_pool = [
            f"{prefix} {core}"
            for prefix in _CITY_PREFIXES for core in _CITY_CORES
        ]
        rng.shuffle(names_pool)
        pool = iter(names_pool)
        duplicated: list[str] = []
        for state, box in _BR_STATES.items():
            for __ in range(cities_per_state):
                try:
                    name = next(pool)
                except StopIteration:
                    name = f"Cidade {rng.randint(1, 9999)}"
                add_city(name, "Brasil", state, box)
                if rng.random() < ambiguous_fraction:
                    duplicated.append(name)
        # Deliberate homonyms: the same city name in another state —
        # the disambiguation cases human curators handle in the paper.
        states = list(_BR_STATES)
        for name in duplicated:
            other_state = rng.choice(states)
            add_city(name, "Brasil", other_state, _BR_STATES[other_state])
        # A few cities for the other countries.
        for country, box in _COUNTRIES.items():
            if country == "Brasil":
                continue
            for index in range(cities_per_country):
                add_city(f"{country} City {index + 1}", country, None, box)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def countries(self) -> list[str]:
        return sorted(_COUNTRIES)

    def states(self, country: str = "Brasil") -> list[str]:
        return sorted(_BR_STATES) if country == "Brasil" else []

    def cities(self, country: str | None = None,
               state: str | None = None) -> Iterator[Place]:
        for places in self._cities.values():
            for place in places:
                if country is not None and place.country != country:
                    continue
                if state is not None and place.state != state:
                    continue
                yield place

    def city_names(self, country: str | None = None,
                   state: str | None = None) -> list[str]:
        return sorted({
            place.name for place in self.cities(country, state)
        })

    def resolve(self, country: str | None = None, state: str | None = None,
                city: str | None = None) -> Place:
        """Resolve the most specific level available.

        Raises :class:`~repro.errors.GeocodingError` on unknown or
        irreducibly ambiguous input (city name in two states with no
        state given) — those go to the human-curation queue.
        """
        if city:
            candidates = self._cities.get(city, [])
            if country:
                candidates = [p for p in candidates if p.country == country]
            if state:
                candidates = [p for p in candidates if p.state == state]
            if len(candidates) == 1:
                return candidates[0]
            if len(candidates) > 1:
                raise GeocodingError(
                    f"ambiguous city {city!r}: "
                    + ", ".join(sorted(str(p.state) for p in candidates))
                )
            if not country and not state:
                raise GeocodingError(f"unknown city {city!r}")
            # fall through to state/country resolution
        if state and state in _BR_STATES and (country in (None, "Brasil")):
            lat, lon = _centroid(_BR_STATES[state])
            return Place(state, "state", "Brasil", state, lat, lon,
                         uncertainty_km=_box_radius_km(_BR_STATES[state]))
        if country and country in _COUNTRIES:
            lat, lon = _centroid(_COUNTRIES[country])
            return Place(country, "country", country, None, lat, lon,
                         uncertainty_km=_box_radius_km(_COUNTRIES[country]))
        raise GeocodingError(
            f"cannot resolve (country={country!r}, state={state!r}, "
            f"city={city!r})"
        )

    def try_resolve(self, country: str | None = None,
                    state: str | None = None,
                    city: str | None = None) -> Place | None:
        try:
            return self.resolve(country, state, city)
        except GeocodingError:
            return None
