"""A deterministic historical climate archive.

Stage 1.3 of the paper's curation fills missing environmental fields
(air temperature, atmospheric conditions) "obtained from authoritative
sources, once location and date were defined".  This module is that
authoritative source: a physically plausible, fully deterministic model

``(latitude, longitude, date, hour) -> ClimateReading``

Temperature combines a latitude-dependent annual mean, a seasonal
sinusoid (phase-flipped across the equator), a diurnal cycle and
coordinate-hashed noise, so the same query always returns the same
answer — which is exactly what a historical archive does.
"""

from __future__ import annotations

import datetime as _dt
import math

from repro.hashing import stable_unit

__all__ = ["ClimateReading", "ClimateArchive"]

_CONDITIONS = ("clear", "partly cloudy", "cloudy", "light rain", "rain",
               "storm")


class ClimateReading:
    """One archive answer."""

    __slots__ = ("temperature_c", "humidity_pct", "conditions")

    def __init__(self, temperature_c: float, humidity_pct: float,
                 conditions: str) -> None:
        self.temperature_c = temperature_c
        self.humidity_pct = humidity_pct
        self.conditions = conditions

    def __repr__(self) -> str:
        return (
            f"ClimateReading({self.temperature_c:.1f}C, "
            f"{self.humidity_pct:.0f}%, {self.conditions})"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "temperature_c": round(self.temperature_c, 1),
            "humidity_pct": round(self.humidity_pct, 0),
            "conditions": self.conditions,
        }


def _stable_noise(*parts: object) -> float:
    """Deterministic noise in [0, 1) derived from the query itself."""
    return stable_unit(*parts)


class ClimateArchive:
    """The deterministic climate oracle."""

    def __init__(self, noise_amplitude_c: float = 3.0) -> None:
        self.noise_amplitude_c = noise_amplitude_c

    def reading(self, latitude: float, longitude: float,
                date: _dt.date, hour: int = 12) -> ClimateReading:
        """The archive's answer for one place-time."""
        if not -90 <= latitude <= 90:
            raise ValueError(f"bad latitude {latitude}")
        if not -180 <= longitude <= 180:
            raise ValueError(f"bad longitude {longitude}")
        if not 0 <= hour <= 23:
            raise ValueError(f"bad hour {hour}")

        day_of_year = date.timetuple().tm_yday
        # Annual mean falls off with distance from the equator.
        annual_mean = 27.0 - 0.35 * abs(latitude)
        # Seasonal swing grows with |latitude|.  cos(phase) peaks in
        # mid-January: that is winter in the north (negative contribution)
        # and summer in the south (positive contribution).
        swing = 1.5 + 0.25 * abs(latitude)
        phase = (day_of_year - 15) / 365.25 * 2 * math.pi
        seasonal = swing * math.cos(phase) * (-1 if latitude >= 0 else 1)
        # Diurnal cycle: coolest ~05h, warmest ~14h.
        diurnal = 4.0 * math.sin((hour - 8) / 24 * 2 * math.pi)
        noise = (
            _stable_noise(round(latitude, 2), round(longitude, 2),
                          date.isoformat(), hour) - 0.5
        ) * 2 * self.noise_amplitude_c
        temperature = annual_mean + seasonal + diurnal + noise

        wet_noise = _stable_noise("humidity", round(latitude, 2),
                                  round(longitude, 2), date.isoformat())
        # Wet season roughly opposite the cool season in the tropics.
        wet_season = 0.5 + 0.3 * math.sin(phase + math.pi)
        humidity = max(20.0, min(100.0, 45 + 40 * wet_season
                                 + 20 * (wet_noise - 0.5)))
        condition_score = wet_season * 0.6 + wet_noise * 0.4
        index = min(len(_CONDITIONS) - 1,
                    int(condition_score * len(_CONDITIONS)))
        return ClimateReading(temperature, humidity, _CONDITIONS[index])

    def temperature(self, latitude: float, longitude: float,
                    date: _dt.date, hour: int = 12) -> float:
        return self.reading(latitude, longitude, date, hour).temperature_c

    def conditions(self, latitude: float, longitude: float,
                   date: _dt.date, hour: int = 12) -> str:
        return self.reading(latitude, longitude, date, hour).conditions
