"""Spatial analysis: distances, centroids, outlier detection.

Stage 2 of the paper ("a geographical approach for metadata quality
improvement") checks errors through spatial analysis — e.g. a recording
of a species thousands of kilometres from every other recording of that
species is either a misidentification or a discovery.  The detector here
implements the robust-distance formulation:

1. compute the geographic centroid of a species' occurrence points,
2. compute each point's great-circle distance to the centroid,
3. flag points whose distance exceeds
   ``median + mad_multiplier * MAD`` (median absolute deviation) and an
   absolute floor ``min_distance_km``.

MAD rather than the standard deviation keeps a single wild point from
masking itself.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = ["haversine_km", "geographic_centroid", "pairwise_distances_km",
           "spatial_outliers", "SpatialOutlier"]

_EARTH_RADIUS_KM = 6371.0088


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two (degree) coordinates."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    d_phi = phi2 - phi1
    d_lambda = math.radians(lon2 - lon1)
    a = (
        math.sin(d_phi / 2) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(d_lambda / 2) ** 2
    )
    return 2 * _EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def geographic_centroid(points: Sequence[tuple[float, float]]) -> tuple[float, float]:
    """Centroid on the sphere (mean of unit vectors), in degrees."""
    if not points:
        raise ValueError("centroid of no points")
    xs = ys = zs = 0.0
    for lat, lon in points:
        phi, lam = math.radians(lat), math.radians(lon)
        xs += math.cos(phi) * math.cos(lam)
        ys += math.cos(phi) * math.sin(lam)
        zs += math.sin(phi)
    n = len(points)
    xs, ys, zs = xs / n, ys / n, zs / n
    hyp = math.hypot(xs, ys)
    return (math.degrees(math.atan2(zs, hyp)),
            math.degrees(math.atan2(ys, xs)))


def pairwise_distances_km(points: Sequence[tuple[float, float]]) -> np.ndarray:
    """Full symmetric distance matrix (km)."""
    n = len(points)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = haversine_km(*points[i], *points[j])
            matrix[i, j] = matrix[j, i] = d
    return matrix


class SpatialOutlier:
    """One flagged occurrence."""

    __slots__ = ("index", "latitude", "longitude", "distance_km",
                 "threshold_km")

    def __init__(self, index: int, latitude: float, longitude: float,
                 distance_km: float, threshold_km: float) -> None:
        self.index = index
        self.latitude = latitude
        self.longitude = longitude
        self.distance_km = distance_km
        self.threshold_km = threshold_km

    def __repr__(self) -> str:
        return (
            f"SpatialOutlier(#{self.index} at {self.distance_km:.0f}km, "
            f"threshold {self.threshold_km:.0f}km)"
        )


def spatial_outliers(points: Sequence[tuple[float, float]],
                     mad_multiplier: float = 6.0,
                     min_distance_km: float = 500.0,
                     min_points: int = 5) -> list[SpatialOutlier]:
    """Flag occurrence points far outside the species' core range.

    Returns an empty list when fewer than ``min_points`` points exist —
    too little data to call anything an outlier.
    """
    if len(points) < min_points:
        return []
    centroid = geographic_centroid(points)
    distances = np.array([
        haversine_km(lat, lon, *centroid) for lat, lon in points
    ])
    median = float(np.median(distances))
    mad = float(np.median(np.abs(distances - median)))
    threshold = max(median + mad_multiplier * max(mad, 1.0),
                    min_distance_km)
    outliers = []
    for index, distance in enumerate(distances):
        if distance > threshold:
            lat, lon = points[index]
            outliers.append(SpatialOutlier(index, lat, lon,
                                           float(distance), threshold))
    return outliers


def bounding_box(points: Iterable[tuple[float, float]]) -> tuple[float, float, float, float]:
    """(lat_min, lat_max, lon_min, lon_max) of the points."""
    lats, lons = zip(*points)
    return (min(lats), max(lats), min(lons), max(lons))


def range_span_km(points: Sequence[tuple[float, float]]) -> float:
    """Diameter of the occurrence set (max pairwise distance)."""
    if len(points) < 2:
        return 0.0
    return float(pairwise_distances_km(points).max())
