"""Geographic substrates for metadata curation.

Stage 1 of the paper's curation adds geographic coordinates to records
made before GPS and fills in environmental conditions from authoritative
sources; stage 2 uses spatial analysis to detect errors.  This package
provides the three oracles those steps need:

* :mod:`repro.geo.gazetteer` — a seeded synthetic Neotropical gazetteer
  mapping (country, state, city/location) to coordinates;
* :mod:`repro.geo.climate` — a deterministic historical climate model
  answering (coordinates, date) -> temperature / humidity / conditions;
* :mod:`repro.geo.spatial` — great-circle distances, centroids and the
  spatial outlier detection behind the stage-2 audit.
"""

from repro.geo.climate import ClimateArchive, ClimateReading
from repro.geo.gazetteer import Gazetteer, Place
from repro.geo.spatial import (
    geographic_centroid,
    haversine_km,
    spatial_outliers,
)

__all__ = [
    "ClimateArchive",
    "ClimateReading",
    "Gazetteer",
    "Place",
    "geographic_centroid",
    "haversine_km",
    "spatial_outliers",
]
