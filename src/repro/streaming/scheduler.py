"""Decay-aware re-assessment scheduling.

A one-shot sweep answers "is the collection good *now*?"; the paper's
point is that the answer rots — names go out of date as the taxonomy
advances, services disappear, workflow specs decay.
:class:`RecheckScheduler` turns those decay signals into a work queue
of *subjects* (shards, workflows, collections — any string the caller
assesses) on the engine's simulated clock:

* **staleness** — a subject assessed longer than ``interval_seconds``
  ago falls due automatically;
* **availability collapse** — :meth:`observe_availability` below the
  dead-service threshold re-enqueues every tracked subject, because
  verdicts built on a dead service can no longer be reproduced;
* **workflow decay** — :meth:`scan_workflows` runs the memoized
  :class:`~repro.workflow.decay.DecayScanner` over a workflow
  repository and enqueues each decayed spec.

The scheduler never runs anything itself; consumers :meth:`pop_due`
and feed the subjects back into their curator.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any

from repro.telemetry import Telemetry, get_telemetry
from repro.workflow.decay import DEAD_SERVICE_THRESHOLD, DecayScanner
from repro.workflow.engine import SimulatedClock
from repro.workflow.repository import WorkflowRepository

__all__ = ["RecheckScheduler"]

DEFAULT_INTERVAL_SECONDS = 7 * 24 * 3600.0


class RecheckScheduler:
    """Queue of subjects due for re-assessment, with decay triggers."""

    def __init__(self, clock: SimulatedClock | None = None,
                 interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
                 availability_threshold: float = DEAD_SERVICE_THRESHOLD,
                 telemetry: Telemetry | None = None) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                "RecheckScheduler needs interval_seconds > 0")
        self.clock = clock or SimulatedClock()
        self.interval_seconds = interval_seconds
        self.availability_threshold = availability_threshold
        self.telemetry = telemetry or get_telemetry()
        self._assessed_at: dict[str, _dt.datetime] = {}
        #: subject -> first reason it became due (first wins: the
        #: original trigger is the interesting one to report)
        self._queue: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def note_assessed(self, subject: str,
                      at: _dt.datetime | None = None) -> None:
        """Record a completed assessment; clears any queued recheck."""
        self._assessed_at[subject] = at or self.clock.now()
        self._queue.pop(subject, None)

    def forget(self, subject: str) -> None:
        self._assessed_at.pop(subject, None)
        self._queue.pop(subject, None)

    def subjects(self) -> list[str]:
        return sorted(self._assessed_at)

    def assessed_at(self, subject: str) -> _dt.datetime | None:
        return self._assessed_at.get(subject)

    # ------------------------------------------------------------------
    # triggers
    # ------------------------------------------------------------------

    def enqueue(self, subject: str, reason: str) -> bool:
        """Mark a subject due.  Returns ``False`` when it was already
        queued (the earlier reason is kept)."""
        if subject in self._queue:
            return False
        self._queue[subject] = reason
        self.telemetry.metrics.counter(
            "streaming_rechecks_total", reason=reason).inc()
        return True

    def observe_availability(self, service: str,
                             availability: float) -> list[str]:
        """Feed a measured availability; a collapse below the threshold
        re-enqueues every tracked subject."""
        if availability >= self.availability_threshold:
            return []
        enqueued = []
        for subject in sorted(self._assessed_at):
            if self.enqueue(subject, "availability_collapse"):
                enqueued.append(subject)
        return enqueued

    def scan_workflows(self, repository: WorkflowRepository,
                       scanner: DecayScanner) -> list[str]:
        """Scan a workflow repository for decay (memoized: unchanged
        specs cost no loads) and enqueue decayed specs as
        ``workflow:<name>`` subjects."""
        enqueued = []
        for name, report in sorted(
                scanner.scan_repository(repository).items()):
            if report.decayed:
                subject = f"workflow:{name}"
                if self.enqueue(subject, "workflow_decay"):
                    enqueued.append(subject)
        return enqueued

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------

    def due(self, now: _dt.datetime | None = None) -> dict[str, str]:
        """Fold staleness into the queue and return ``subject ->
        reason`` for everything currently due (sorted by subject)."""
        moment = now or self.clock.now()
        horizon = _dt.timedelta(seconds=self.interval_seconds)
        for subject in sorted(self._assessed_at):
            if (subject not in self._queue
                    and moment - self._assessed_at[subject] >= horizon):
                self.enqueue(subject, "stale")
        return dict(sorted(self._queue.items()))

    def pop_due(self, now: _dt.datetime | None = None) -> dict[str, str]:
        """:meth:`due`, draining the queue."""
        ready = self.due(now)
        self._queue.clear()
        return ready

    def stats(self) -> dict[str, Any]:
        return {
            "tracked": len(self._assessed_at),
            "queued": len(self._queue),
            "interval_seconds": self.interval_seconds,
            "availability_threshold": self.availability_threshold,
        }
