"""The backpressured ingest source.

:class:`ObservationStream` sits between producers (field recorders,
sequencing runs, simulation output) and a sink exposing the bulk
``add_all(batch)`` write path (:class:`~repro.observations.store.ObservationStore`,
a :class:`~repro.sounds.collection.SoundCollection` adapter, ...).  It
holds a bounded buffer and flushes **micro-batches**, so the sink pays
one batched validation/journal/index pass per flush instead of one per
record.

Backpressure is explicit, not accidental: when the buffer is full,
``policy="block"`` makes :meth:`offer` wait (bounded by a timeout) for
a consumer to flush, and ``policy="reject"`` refuses the record
immediately — the producer decides between latency and loss, the
buffer never grows without bound.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Iterable

from repro.errors import ReproError
from repro.telemetry import Telemetry, get_telemetry

__all__ = ["ObservationStream", "StreamBackpressure"]

_POLICIES = ("block", "reject")


class StreamBackpressure(ReproError):
    """Raised when a blocking ``offer`` times out on a full buffer."""


class ObservationStream:
    """A bounded, micro-batching, backpressured buffer over a sink.

    Parameters
    ----------
    sink:
        Any object with ``add_all(batch) -> int`` — the storage engine's
        bulk write path does the heavy lifting.
    capacity:
        Maximum records buffered before backpressure applies.
    batch_size:
        Records flushed per micro-batch (one ``add_all`` call each).
    policy:
        ``"block"`` — a full-buffer ``offer`` waits up to
        ``block_timeout`` seconds for space, then raises
        :class:`StreamBackpressure`; ``"reject"`` — it returns ``False``
        immediately.
    on_batch:
        Optional callback ``(batch) -> None`` invoked after each flush
        lands — the hook the incremental curator uses to mark the new
        records dirty.
    """

    def __init__(self, sink: Any, capacity: int = 256,
                 batch_size: int = 64, policy: str = "block",
                 block_timeout: float = 1.0,
                 on_batch: Callable[[list], None] | None = None,
                 telemetry: Telemetry | None = None,
                 source: str = "stream") -> None:
        if capacity < 1:
            raise ValueError("ObservationStream needs capacity >= 1")
        if batch_size < 1:
            raise ValueError("ObservationStream needs batch_size >= 1")
        if policy not in _POLICIES:
            raise ValueError(
                f"unknown backpressure policy {policy!r} "
                f"(expected one of {_POLICIES})")
        self.sink = sink
        self.capacity = capacity
        self.batch_size = min(batch_size, capacity)
        self.policy = policy
        self.block_timeout = block_timeout
        self.on_batch = on_batch
        self.source = source
        self.telemetry = telemetry or get_telemetry()
        #: Condition doubles as the buffer lock; flush() notifies
        #: blocked producers after making space.
        self._lock = threading.Condition()
        self._buffer: deque[Any] = deque()
        self._offered = 0
        self._ingested = 0
        self._rejected = 0
        self._batches = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    def __repr__(self) -> str:
        return (
            f"ObservationStream({len(self)}/{self.capacity} buffered, "
            f"policy={self.policy!r}, batch_size={self.batch_size})"
        )

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------

    def offer(self, item: Any, timeout: float | None = None) -> bool:
        """Enqueue one record, honouring the backpressure policy.

        Returns ``True`` when buffered.  Under ``policy="reject"`` a
        full buffer returns ``False`` (and counts the loss); under
        ``policy="block"`` a full buffer waits up to ``timeout``
        (default :attr:`block_timeout`) seconds for a flush to make
        space, then raises :class:`StreamBackpressure`.
        """
        metrics = self.telemetry.metrics
        with self._lock:
            self._offered += 1
            if len(self._buffer) >= self.capacity:
                if self.policy == "reject":
                    self._rejected += 1
                    metrics.counter("streaming_rejected_total",
                                    source=self.source).inc()
                    return False
                remaining = (self.block_timeout if timeout is None
                             else timeout)
                if not self._lock.wait_for(
                        lambda: len(self._buffer) < self.capacity,
                        timeout=remaining):
                    self._rejected += 1
                    metrics.counter("streaming_rejected_total",
                                    source=self.source).inc()
                    raise StreamBackpressure(
                        f"stream buffer full ({self.capacity} records) "
                        f"for {remaining}s — no consumer flushed")
            self._buffer.append(item)
            depth = len(self._buffer)
        metrics.gauge("streaming_buffer_depth",
                      source=self.source).set(depth)
        return True

    def ingest(self, items: Iterable[Any]) -> int:
        """Single-threaded convenience: offer every item, flushing a
        micro-batch whenever the buffer fills, then drain the rest.
        Returns the number of records that reached the sink."""
        landed = 0
        for item in items:
            with self._lock:
                full = len(self._buffer) >= self.capacity
            if full:
                landed += self.flush()
            self.offer(item)
        return landed + self.drain()

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------

    def flush(self) -> int:
        """Hand at most one micro-batch to the sink's bulk write path.

        The batch is popped and written under the buffer lock — batches
        reach the sink in arrival order even with concurrent flushers —
        and blocked producers are notified of the freed space.  Returns
        the number of records flushed (0 on an empty buffer).  If the
        sink rejects the batch the records are already out of the
        buffer; the exception propagates to the flusher.
        """
        metrics = self.telemetry.metrics
        with self._lock:
            if not self._buffer:
                return 0
            batch = [self._buffer.popleft()
                     for _ in range(min(self.batch_size,
                                        len(self._buffer)))]
            self.sink.add_all(batch)
            self._ingested += len(batch)
            self._batches += 1
            depth = len(self._buffer)
            self._lock.notify_all()
        metrics.counter("streaming_ingested_total",
                        source=self.source).inc(len(batch))
        metrics.counter("streaming_batches_total",
                        source=self.source).inc()
        metrics.gauge("streaming_buffer_depth",
                      source=self.source).set(depth)
        metrics.window("streaming_window_batch_records",
                       source=self.source).observe(len(batch))
        if self.on_batch is not None:
            self.on_batch(batch)
        return len(batch)

    def drain(self) -> int:
        """Flush micro-batches until the buffer is empty."""
        total = 0
        while True:
            flushed = self.flush()
            if not flushed:
                return total
            total += flushed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "buffered": len(self._buffer),
                "capacity": self.capacity,
                "batch_size": self.batch_size,
                "policy": self.policy,
                "offered": self._offered,
                "ingested": self._ingested,
                "rejected": self._rejected,
                "batches": self._batches,
            }
