"""Dirty-set-proportional quality assessment.

:class:`IncrementalCurator` splits a collection table into fixed
**shards** of ``shard_size`` consecutive record ids and assesses each
shard through a tiny two-stage workflow on the engine:

* ``Shard_reader`` — normalizes rows into per-record facts (name,
  completeness over the declared quality fields);
* ``Shard_assessor`` — resolves each distinct name through the caller's
  resolver and produces per-record verdicts plus shard quality numbers.

Both stages are cacheable; their entries are tagged with the shard key,
every ``record:<id>`` they read, and (assessor only) each
``resource:<name>`` version the verdicts depend on.  Churn arrives as
:meth:`mark_dirty` / :meth:`bump_resource` calls — typically from an
:class:`~repro.streaming.stream.ObservationStream` ``on_batch`` hook —
which invalidate the tagged cache entries and mark the owning shards
dirty.  The next :meth:`assess` re-runs **only dirty shards** (reading
only their rows), reuses the stored summaries of clean shards, and
merges deterministically, so steady-state sweep cost is proportional to
the dirty set, not the collection.  Note the flip side: edits that
bypass these hooks (direct table writes) are invisible until the next
``assess(full=True)``.

Every recomputed shard is a real engine run: the attached
:class:`~repro.provenance.manager.ProvenanceManager` captures it, so
the provenance store accumulates the *partial* OPM runs stitched over
time — a resource bump shows the reader stage replayed from cache
(``wasCachedFrom``) while only the assessor re-executed.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Mapping

from repro.hashing import canonical_digest
from repro.provenance.manager import ProvenanceManager
from repro.storage import Column, Database, TableSchema, col
from repro.storage import column_types as ct
from repro.streaming.deps import DependencyIndex
from repro.telemetry import Telemetry, get_telemetry
from repro.workflow.cache import ResultCache
from repro.workflow.engine import WorkflowEngine
from repro.workflow.model import Processor, Workflow

__all__ = ["AssessmentResult", "IncrementalCurator", "REVIEW_TABLE",
           "catalogue_resolver"]

REVIEW_TABLE = "stream_review_queue"

READER = "Shard_reader"
ASSESSOR = "Shard_assessor"

#: row fields whose presence feeds the completeness score by default
DEFAULT_QUALITY_FIELDS = ("species", "genus", "country", "state",
                          "collect_date")


def catalogue_resolver(catalogue: Any) -> Callable[[str], dict]:
    """Adapt ``CatalogueOfLife.resolve`` to the curator's resolver
    protocol (``name -> {"status", "accepted_name", "suggestion"}``).
    Remember to :meth:`~IncrementalCurator.bump_resource` the
    ``catalogue`` resource whenever the catalogue advances."""
    def resolve(name: str) -> dict:
        answer = catalogue.resolve(name)
        return {
            "status": answer.status,
            "accepted_name": answer.accepted_name,
            "suggestion": answer.suggestion,
        }
    return resolve


class AssessmentResult:
    """One merged sweep over every shard."""

    def __init__(self, quality: dict[str, Any],
                 review: list[dict[str, Any]],
                 shard_digests: dict[str, str],
                 run_ids: list[str],
                 shards_recomputed: int, shards_reused: int,
                 wall_seconds: float) -> None:
        self.quality = quality
        self.review = review
        self.shard_digests = shard_digests
        self.run_ids = run_ids
        self.shards_recomputed = shards_recomputed
        self.shards_reused = shards_reused
        self.wall_seconds = wall_seconds
        #: content digest of everything assessment produced — two sweeps
        #: agree iff their digests agree, which is what the differential
        #: incremental-vs-full suite asserts on
        self.digest = canonical_digest({
            "quality": quality,
            "review": review,
            "shards": shard_digests,
        })

    def summary(self) -> dict[str, Any]:
        return {
            **self.quality,
            "review_rows": len(self.review),
            "shards_recomputed": self.shards_recomputed,
            "shards_reused": self.shards_reused,
            "digest": self.digest[:16],
        }

    def __repr__(self) -> str:
        return (
            f"AssessmentResult({self.quality.get('records', 0)} records, "
            f"{self.shards_recomputed} shard(s) recomputed, "
            f"{self.shards_reused} reused)"
        )


class IncrementalCurator:
    """Shard-wise incremental assessment over one integer-id table.

    Parameters
    ----------
    database:
        The collection's database (original table is never mutated;
        verdicts land in ``review_table``).
    resolver:
        ``name -> {"status", "accepted_name", "suggestion"}`` against
        the external authority (see :func:`catalogue_resolver`).  The
        resolver's knowledge state is **not** part of the cache key —
        declare it via ``resource_versions`` and call
        :meth:`bump_resource` when it changes.
    table / id_field / name_field / quality_fields:
        What to assess — any table with a positive-integer id column
        and a name column works, which is what keeps the pipeline
        collection-agnostic (FNJV recordings, a genomics annotation
        table, ...).
    shard_size:
        Records per shard; the dirty-set granularity.
    resource_versions:
        Initial versions of the external resources verdicts depend on,
        e.g. ``{"catalogue": 2013}``.
    """

    def __init__(self, database: Database,
                 resolver: Callable[[str], Mapping[str, Any]],
                 table: str = "recordings",
                 id_field: str = "record_id",
                 name_field: str = "species",
                 quality_fields: Iterable[str] = DEFAULT_QUALITY_FIELDS,
                 shard_size: int = 64,
                 resource_versions: Mapping[str, Any] | None = None,
                 cache: ResultCache | None = None,
                 provenance: ProvenanceManager | None = None,
                 telemetry: Telemetry | None = None,
                 max_workers: int = 1,
                 review_table: str = REVIEW_TABLE) -> None:
        if shard_size < 1:
            raise ValueError("IncrementalCurator needs shard_size >= 1")
        self.database = database
        self.table = table
        self.id_field = id_field
        self.name_field = name_field
        self.quality_fields = tuple(quality_fields)
        self.shard_size = shard_size
        self.review_table = review_table
        self.telemetry = telemetry or get_telemetry()
        self.cache = cache if cache is not None else ResultCache(
            max_entries=4096)
        self.engine = WorkflowEngine(telemetry=self.telemetry,
                                     max_workers=max_workers,
                                     cache=self.cache)
        self.provenance = provenance or ProvenanceManager()
        self.provenance.attach(self.engine)
        self.index = DependencyIndex()
        self._resolver = resolver
        self._resource_versions: dict[str, Any] = dict(
            resource_versions or {})
        #: shard key -> last outputs (quality/updates/names/count/digest)
        self._results: dict[str, dict[str, Any]] = {}
        self._dirty: set[str] = set()
        self._register_kinds()
        self._ensure_review_table()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _ensure_review_table(self) -> None:
        if not self.database.has_table(self.review_table):
            self.database.create_table(TableSchema(self.review_table, [
                Column("record_id", ct.INTEGER),
                Column("old_name", ct.TEXT),
                Column("new_name", ct.TEXT),
                Column("reason", ct.TEXT, nullable=False),
                Column("shard", ct.TEXT, nullable=False),
                Column("status", ct.TEXT, default="flagged"),
            ], primary_key="record_id"))
            self.database.create_index(self.review_table, "shard", "hash")

    def _register_kinds(self) -> None:
        registry = self.engine.registry
        id_field = self.id_field
        name_field = self.name_field
        fields = self.quality_fields
        resolver = self._resolver

        def shard_reader(bound: Mapping[str, Any]) -> dict[str, Any]:
            rows = bound["rows"]
            records = []
            for row in rows:
                present = sum(
                    1 for field in fields
                    if row.get(field) not in (None, ""))
                name = str(row.get(name_field) or "").strip()
                records.append({
                    "record_id": row[id_field],
                    "name": name,
                    "completeness": round(present / len(fields), 6),
                })
            names = sorted({
                record["name"] for record in records if record["name"]
            })
            return {
                "records": records,
                "names": names,
                "count": len(records),
                "__duration__": max(0.05, len(records) * 0.001),
            }

        def shard_assessor(bound: Mapping[str, Any]) -> dict[str, Any]:
            records = bound["records"]
            resolutions = {
                name: dict(resolver(name)) for name in bound["names"]
            }
            updates = []
            outdated = unresolved = 0
            completeness_sum = 0.0
            for record in records:
                completeness_sum += record["completeness"]
                name = record["name"]
                if not name:
                    unresolved += 1
                    updates.append({
                        "record_id": record["record_id"],
                        "old_name": None,
                        "new_name": None,
                        "reason": "missing_name",
                    })
                    continue
                answer = resolutions[name]
                if answer["status"] == "outdated":
                    outdated += 1
                    updates.append({
                        "record_id": record["record_id"],
                        "old_name": name,
                        "new_name": answer["accepted_name"],
                        "reason": "outdated_name",
                    })
                elif answer["status"] != "accepted":
                    unresolved += 1
                    updates.append({
                        "record_id": record["record_id"],
                        "old_name": name,
                        "new_name": answer.get("suggestion"),
                        "reason": "unresolved_name",
                    })
            assessed = len(records)
            quality = {
                "assessed": assessed,
                "completeness": round(
                    completeness_sum / assessed, 6) if assessed else 1.0,
                "outdated": outdated,
                "unresolved": unresolved,
            }
            return {
                "updates": updates,
                "quality": quality,
                "__duration__": max(0.05, 0.002 * len(bound["names"])),
            }

        registry.register_function("stream_shard_reader", shard_reader)
        registry.register_function("stream_shard_assessor", shard_assessor)

    # ------------------------------------------------------------------
    # shard geometry
    # ------------------------------------------------------------------

    def _shard_index(self, record_id: int) -> int:
        return (int(record_id) - 1) // self.shard_size

    @staticmethod
    def _shard_key(index: int) -> str:
        return f"shard:{index:05d}"

    def _shard_bounds(self, index: int) -> tuple[int, int]:
        low = index * self.shard_size + 1
        return low, low + self.shard_size - 1

    def _max_record_id(self) -> int:
        rows = self.database.query(self.table).order_by(
            self.id_field, descending=True
        ).limit(1).select(self.id_field).all()
        return int(rows[0][self.id_field]) if rows else 0

    def _rows_for_shard(self, index: int) -> list[dict[str, Any]]:
        low, high = self._shard_bounds(index)
        return self.database.query(self.table).where(
            col(self.id_field).between(low, high)
        ).order_by(self.id_field).all()

    # ------------------------------------------------------------------
    # churn intake
    # ------------------------------------------------------------------

    def mark_dirty(self, record_ids: Iterable[int]) -> list[str]:
        """Declare changed/new records; returns the dirty shard keys.

        Cached entries tagged with any of the records are invalidated
        immediately; the owning shards re-run on the next
        :meth:`assess`.
        """
        ids = sorted({int(record_id) for record_id in record_ids})
        if not ids:
            return []
        record_keys = [DependencyIndex.record_key(i) for i in ids]
        dirty = set(self.index.subjects_of(*record_keys))
        # records never seen by a sweep (fresh stream arrivals) map to
        # their shard arithmetically
        dirty.update(self._shard_key(self._shard_index(i)) for i in ids)
        self.cache.invalidate_tags(*record_keys)
        self._dirty.update(dirty)
        self.telemetry.metrics.counter(
            "streaming_dirty_records_total").inc(len(ids))
        return sorted(dirty)

    def mark_batch_dirty(self, batch: Iterable[Any]) -> list[str]:
        """`on_batch` hook for :class:`ObservationStream`: marks every
        record of a flushed micro-batch dirty (items may be row dicts or
        objects with the id field as attribute)."""
        ids = []
        for item in batch:
            if isinstance(item, Mapping):
                ids.append(item[self.id_field])
            else:
                ids.append(getattr(item, self.id_field))
        return self.mark_dirty(ids)

    def bump_resource(self, name: str, version: Any = None) -> int:
        """Declare that external resource ``name`` changed (catalogue
        advanced, gazetteer re-issued, function table edited).  Every
        assessor entry depending on it is invalidated and **all** shards
        are marked dirty; reader entries survive, so the next sweep
        re-runs only the resolution stage.  Returns the number of cache
        entries dropped."""
        current = self._resource_versions.get(name, 0)
        self._resource_versions[name] = (
            version if version is not None
            else (current + 1 if isinstance(current, int) else current))
        dropped = self.cache.invalidate_tags(
            DependencyIndex.resource_key(name))
        self._dirty.update(self._results)
        return dropped

    @property
    def resource_versions(self) -> dict[str, Any]:
        return dict(self._resource_versions)

    # ------------------------------------------------------------------
    # assessment
    # ------------------------------------------------------------------

    def _shard_workflow(self, shard_key: str,
                        record_keys: list[str]) -> Workflow:
        data_tags = [shard_key, *record_keys]
        workflow = Workflow(
            f"incremental_assessment_{shard_key.replace(':', '_')}",
            description="Shard-wise incremental quality assessment",
        )
        workflow.add_processor(Processor(
            READER, "stream_shard_reader",
            inputs=["rows"],
            outputs=["records", "names", "count"],
            config={
                "cache_tags": data_tags,
                "quality_fields": list(self.quality_fields),
                "name_field": self.name_field,
                "id_field": self.id_field,
            },
        ))
        workflow.add_processor(Processor(
            ASSESSOR, "stream_shard_assessor",
            inputs=["records", "names"],
            outputs=["updates", "quality"],
            config={
                # resource versions are part of the key: bumping one
                # re-keys (and so re-runs) only this stage
                "cache_tags": data_tags + [
                    DependencyIndex.resource_key(resource)
                    for resource in sorted(self._resource_versions)
                ],
                "resource_versions": dict(self._resource_versions),
            },
        ))
        workflow.map_input("rows", READER, "rows")
        workflow.link(READER, "records", ASSESSOR, "records")
        workflow.link(READER, "names", ASSESSOR, "names")
        workflow.map_output("records", READER, "records")
        workflow.map_output("names", READER, "names")
        workflow.map_output("count", READER, "count")
        workflow.map_output("updates", ASSESSOR, "updates")
        workflow.map_output("quality", ASSESSOR, "quality")
        return workflow

    def _run_shard(self, index: int) -> tuple[dict[str, Any], str] | None:
        """Assess one shard through the engine; ``None`` for an empty
        id range (gaps never produce runs or review rows)."""
        rows = self._rows_for_shard(index)
        shard_key = self._shard_key(index)
        if not rows:
            self.index.forget(shard_key)
            self._sync_review(index, [])
            return None
        record_keys = [
            DependencyIndex.record_key(row[self.id_field])
            for row in rows
        ]
        workflow = self._shard_workflow(shard_key, record_keys)
        result = self.engine.run(workflow, {"rows": rows})
        outputs = result.outputs
        outcome = {
            "quality": outputs["quality"],
            "updates": outputs["updates"],
            "names": outputs["names"],
            "count": outputs["count"],
        }
        outcome["digest"] = canonical_digest(outcome)
        self.index.register(shard_key, record_keys + [
            DependencyIndex.resource_key(resource)
            for resource in sorted(self._resource_versions)
        ])
        self._sync_review(index, outputs["updates"])
        return outcome, result.run_id

    def _sync_review(self, index: int, updates: list[dict]) -> None:
        """Replace the shard's slice of the review queue."""
        low, high = self._shard_bounds(index)
        self.database.delete_where(
            self.review_table,
            col("record_id").between(low, high))
        if updates:
            shard_key = self._shard_key(index)
            self.database.bulk_load(self.review_table, [
                {
                    "record_id": update["record_id"],
                    "old_name": update["old_name"],
                    "new_name": update["new_name"],
                    "reason": update["reason"],
                    "shard": shard_key,
                    "status": "flagged",
                }
                for update in updates
            ])

    def assess(self, full: bool = False) -> AssessmentResult:
        """One sweep: re-run dirty shards, reuse clean ones, merge.

        ``full=True`` pushes every shard through the engine regardless
        of dirtiness — unchanged shards replay from the result cache
        (``wasCachedFrom`` runs in the provenance store), changed ones
        recompute.  The cold-start sweep is implicitly full.
        """
        metrics = self.telemetry.metrics
        started = time.perf_counter()
        simulated_start = self.engine.clock.now()
        shard_count = self._shard_index(self._max_record_id()) + 1 \
            if self._max_record_id() else 0
        recomputed = reused = 0
        results: dict[str, dict[str, Any]] = {}
        run_ids: list[str] = []
        for index in range(shard_count):
            shard_key = self._shard_key(index)
            if (not full and shard_key not in self._dirty
                    and shard_key in self._results):
                results[shard_key] = self._results[shard_key]
                reused += 1
                continue
            ran = self._run_shard(index)
            recomputed += 1
            if ran is None:
                continue
            outcome, run_id = ran
            results[shard_key] = outcome
            run_ids.append(run_id)
        self._results = results
        self._dirty.clear()
        quality = self._merge_quality(results)
        review = self._review_rows()
        shard_digests = {
            shard_key: outcome["digest"]
            for shard_key, outcome in sorted(results.items())
        }
        wall = time.perf_counter() - started
        metrics.counter("streaming_sweeps_total").inc()
        metrics.counter("streaming_shards_recomputed_total").inc(recomputed)
        if reused:
            metrics.counter("streaming_shards_reused_total").inc(reused)
        # the histogram tracks *simulated* seconds so telemetry
        # snapshots stay byte-deterministic; real elapsed time lives on
        # the returned ``AssessmentResult.wall_seconds``
        metrics.histogram("streaming_sweep_seconds").observe(
            (self.engine.clock.now() - simulated_start).total_seconds())
        metrics.window("streaming_window_accuracy").observe(
            quality["accuracy"])
        metrics.window("streaming_window_completeness").observe(
            quality["completeness"])
        return AssessmentResult(
            quality=quality, review=review, shard_digests=shard_digests,
            run_ids=run_ids, shards_recomputed=recomputed,
            shards_reused=reused, wall_seconds=round(wall, 6))

    def _merge_quality(self,
                       results: dict[str, dict[str, Any]]) -> dict[str, Any]:
        records = sum(outcome["count"] for outcome in results.values())
        outdated = sum(
            outcome["quality"]["outdated"] for outcome in results.values())
        unresolved = sum(
            outcome["quality"]["unresolved"]
            for outcome in results.values())
        weighted = sum(
            outcome["quality"]["completeness"] * outcome["count"]
            for outcome in results.values())
        names: set[str] = set()
        for outcome in results.values():
            names.update(outcome["names"])
        return {
            "records": records,
            "shards": len(results),
            "distinct_names": len(names),
            "completeness": round(weighted / records, 6) if records else 1.0,
            "outdated_records": outdated,
            "unresolved_records": unresolved,
            "accuracy": round(
                1.0 - (outdated + unresolved) / records, 6
            ) if records else 1.0,
        }

    def _review_rows(self) -> list[dict[str, Any]]:
        return self.database.query(self.review_table).order_by(
            "record_id").all()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "table": self.table,
            "shard_size": self.shard_size,
            "shards_known": len(self._results),
            "dirty_shards": len(self._dirty),
            "resource_versions": dict(self._resource_versions),
            "cache": self.cache.stats(),
            "index": self.index.stats(),
        }
