"""Continuous ingestion and incremental re-curation.

The paper's conclusion — quality assessment "must be a continuous
task" because both data and workflows decay — is the workload this
package opens.  Batch curation re-reads and re-assesses the whole
collection on every pass; here the steady-state cost is proportional to
the **dirty set** instead:

* :class:`ObservationStream` — a bounded micro-batching buffer with
  explicit backpressure (block-with-timeout or reject) feeding any
  ``add_all``-style sink through the storage engine's bulk write path;
* :class:`DependencyIndex` — record ids and external-resource names
  mapped to the assessment shards (and so cache tags / invocation keys)
  that consumed them, turning "record X changed" into a dirty set;
* :class:`IncrementalCurator` — shard-wise quality assessment through
  the workflow engine's tagged result cache: only dirty shards re-run,
  clean shards are reused, and the partial OPM runs are stitched into
  the shared provenance store;
* :class:`RecheckScheduler` — decay-aware re-enqueueing on the
  simulated clock: staleness intervals, availability collapse, and
  workflow decay (via the memoized :class:`~repro.workflow.decay.DecayScanner`).
"""

from repro.streaming.deps import DependencyIndex
from repro.streaming.incremental import AssessmentResult, IncrementalCurator
from repro.streaming.scheduler import RecheckScheduler
from repro.streaming.stream import ObservationStream, StreamBackpressure

__all__ = [
    "AssessmentResult",
    "DependencyIndex",
    "IncrementalCurator",
    "ObservationStream",
    "RecheckScheduler",
    "StreamBackpressure",
]
