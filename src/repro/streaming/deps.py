"""The dependency index: what consumed which inputs.

The result cache (:mod:`repro.workflow.cache`) answers "is this exact
invocation memoized?"; it cannot answer the reverse question continuous
curation needs — "record 1042 changed / the catalogue advanced: which
cached work is now stale?".  :class:`DependencyIndex` holds that
reverse edge: each *subject* (an assessment shard, an invocation key, a
workflow) registers the dependency keys it read — ``record:<id>`` for
collection rows, ``resource:<name>`` for external resources (taxonomy
registry, gazetteer, function table).  A churn event maps back to the
dirty subject set in one lookup, and the same strings double as the
cache tags :meth:`ResultCache.invalidate_tags` sweeps.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["DependencyIndex"]


class DependencyIndex:
    """Bidirectional map between subjects and their dependency keys."""

    def __init__(self) -> None:
        self._subject_deps: dict[str, frozenset[str]] = {}
        self._dep_subjects: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    # key helpers — one vocabulary shared with the cache tags
    # ------------------------------------------------------------------

    @staticmethod
    def record_key(record_id: Any) -> str:
        return f"record:{record_id}"

    @staticmethod
    def resource_key(name: str) -> str:
        return f"resource:{name}"

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register(self, subject: str, deps: Iterable[str]) -> None:
        """Declare that ``subject`` consumed ``deps`` (replacing any
        previous declaration for the same subject)."""
        self.forget(subject)
        dep_set = frozenset(str(dep) for dep in deps)
        self._subject_deps[subject] = dep_set
        for dep in dep_set:
            self._dep_subjects.setdefault(dep, set()).add(subject)

    def forget(self, subject: str) -> None:
        """Drop a subject and its edges (no-op when unknown)."""
        for dep in self._subject_deps.pop(subject, ()):
            subjects = self._dep_subjects.get(dep)
            if subjects is not None:
                subjects.discard(subject)
                if not subjects:
                    del self._dep_subjects[dep]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def subjects_of(self, *deps: str) -> list[str]:
        """Every subject that consumed any of ``deps`` — the dirty set
        for a churn event — sorted for deterministic sweeps."""
        dirty: set[str] = set()
        for dep in deps:
            dirty.update(self._dep_subjects.get(dep, ()))
        return sorted(dirty)

    def deps_of(self, subject: str) -> frozenset[str]:
        return self._subject_deps.get(subject, frozenset())

    def subjects(self) -> list[str]:
        return sorted(self._subject_deps)

    def __len__(self) -> int:
        return len(self._subject_deps)

    def __contains__(self, subject: object) -> bool:
        return subject in self._subject_deps

    def stats(self) -> dict[str, int]:
        return {
            "subjects": len(self._subject_deps),
            "dependencies": len(self._dep_subjects),
            "edges": sum(len(deps)
                         for deps in self._subject_deps.values()),
        }
